#include <gtest/gtest.h>

#include "tests/test_helpers.hh"
#include "trace/kernel.hh"

namespace mtp {
namespace {

TEST(Kernel, FinalizeAssignsUniquePcs)
{
    KernelDesc k = test::tinyStreamKernel();
    std::vector<Pc> pcs;
    for (const auto &seg : k.segments)
        for (const auto &inst : seg.insts)
            pcs.push_back(inst.pc);
    std::sort(pcs.begin(), pcs.end());
    EXPECT_EQ(std::adjacent_find(pcs.begin(), pcs.end()), pcs.end());
    EXPECT_NE(pcs.front(), 0u); // 0 is a sentinel
}

TEST(Kernel, InstructionCounts)
{
    KernelDesc k = test::tinyStreamKernel(2, 4, /*trips=*/4, /*loads=*/2);
    // Per trip: 2 loads + 2 comp (repeat) + store + branch = 6 insts.
    EXPECT_EQ(k.warpInstsPerWarp(), 4u * 6u);
    EXPECT_EQ(k.memInstsPerWarp(), 4u * 3u); // 2 loads + 1 store
    EXPECT_EQ(k.prefInstsPerWarp(), 0u);
    EXPECT_EQ(k.totalWarps(), 8u);
    EXPECT_EQ(k.totalThreads(), 8u * warpSize);
    EXPECT_NEAR(k.compToMemRatio(), (24.0 - 12.0) / 12.0, 1e-9);
}

TEST(WarpCursor, WalksEveryDynamicInstruction)
{
    KernelDesc k = test::tinyStreamKernel(1, 1, 3, 1);
    WarpCursor cur(&k);
    std::uint64_t n = 0;
    std::uint64_t loads = 0;
    while (!cur.done()) {
        if (cur.inst().op == Opcode::Load) {
            ++loads;
            EXPECT_EQ(cur.iter(), (loads - 1));
        }
        ++n;
        cur.advance();
    }
    EXPECT_EQ(n, k.warpInstsPerWarp());
    EXPECT_EQ(loads, 3u);
}

TEST(WarpCursor, RepeatCountsAsSeparateInstructions)
{
    KernelDesc k;
    k.name = "rep";
    k.warpsPerBlock = 1;
    k.numBlocks = 1;
    Segment s;
    s.insts.push_back(StaticInst::comp(5));
    k.segments.push_back(s);
    k.finalize();
    WarpCursor cur(&k);
    unsigned n = 0;
    while (!cur.done()) {
        ++n;
        cur.advance();
    }
    EXPECT_EQ(n, 5u);
}

TEST(WarpCursor, SkipsEmptySegments)
{
    KernelDesc k;
    k.name = "empty_seg";
    k.warpsPerBlock = 1;
    k.numBlocks = 1;
    Segment empty;
    Segment body;
    body.insts.push_back(StaticInst::comp(1));
    k.segments.push_back(empty);
    k.segments.push_back(body);
    k.segments.push_back(empty);
    k.finalize();
    WarpCursor cur(&k);
    EXPECT_FALSE(cur.done());
    cur.advance();
    EXPECT_TRUE(cur.done());
}

TEST(Kernel, LoopStructure)
{
    KernelDesc k = test::tinyStreamKernel();
    EXPECT_TRUE(k.segments[0].isLoop());
    Segment straight;
    straight.trips = 1;
    EXPECT_FALSE(straight.isLoop());
}

} // namespace
} // namespace mtp
