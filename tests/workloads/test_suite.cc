#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.hh"

namespace mtp {
namespace {

TEST(Suite, FourteenMemoryIntensiveInPaperOrder)
{
    const auto &names = Suite::memoryIntensiveNames();
    ASSERT_EQ(names.size(), 14u);
    EXPECT_EQ(names.front(), "black");
    EXPECT_EQ(names.back(), "sepia");
    for (const auto &n : names)
        EXPECT_TRUE(Suite::has(n));
}

TEST(Suite, TwelveComputeBenchmarks)
{
    const auto &names = Suite::computeNames();
    ASSERT_EQ(names.size(), 12u);
    for (const auto &n : names) {
        Workload w = Suite::get(n, 64);
        EXPECT_EQ(w.info.type, WorkloadType::Compute) << n;
    }
}

TEST(Suite, UnknownNameRejected)
{
    EXPECT_FALSE(Suite::has("nonesuch"));
}

TEST(Suite, TableIIIGeometry)
{
    // Spot-check the published launch geometry (warps, blocks,
    // occupancy) survives into the synthetic kernels.
    struct Row
    {
        const char *name;
        std::uint64_t warps, blocks;
        unsigned max_blocks;
        WorkloadType type;
    };
    const Row rows[] = {
        {"black", 1920, 480, 3, WorkloadType::Stride},
        {"conv", 4128, 688, 2, WorkloadType::Stride},
        {"mersenne", 128, 32, 2, WorkloadType::Stride},
        {"monte", 2048, 256, 2, WorkloadType::Stride},
        {"pns", 144, 18, 1, WorkloadType::Stride},
        {"scalar", 1024, 128, 2, WorkloadType::Stride},
        {"stream", 2048, 128, 1, WorkloadType::Stride},
        {"backprop", 16384, 2048, 2, WorkloadType::Mp},
        {"cell", 21296, 1331, 1, WorkloadType::Mp},
        {"ocean", 32768, 16384, 8, WorkloadType::Mp},
        {"bfs", 2048, 128, 1, WorkloadType::Uncoal},
        {"cfd", 7272, 1212, 1, WorkloadType::Uncoal},
        {"linear", 8192, 1024, 2, WorkloadType::Uncoal},
        {"sepia", 8192, 1024, 3, WorkloadType::Uncoal},
    };
    for (const auto &row : rows) {
        Workload w = Suite::get(row.name, /*scaleDiv=*/1);
        EXPECT_EQ(w.info.paperWarps, row.warps) << row.name;
        EXPECT_EQ(w.info.paperBlocks, row.blocks) << row.name;
        EXPECT_EQ(w.kernel.numBlocks, row.blocks) << row.name;
        EXPECT_EQ(w.kernel.maxBlocksPerCore, row.max_blocks) << row.name;
        EXPECT_EQ(w.info.type, row.type) << row.name;
        EXPECT_EQ(w.kernel.totalWarps(), row.warps) << row.name;
    }
}

TEST(Suite, ScalingPreservesShapeAndFloors)
{
    Workload full = Suite::get("backprop", 1);
    Workload scaled = Suite::get("backprop", 8);
    EXPECT_EQ(scaled.kernel.warpsPerBlock, full.kernel.warpsPerBlock);
    EXPECT_EQ(scaled.kernel.maxBlocksPerCore,
              full.kernel.maxBlocksPerCore);
    EXPECT_LT(scaled.kernel.numBlocks, full.kernel.numBlocks);
    EXPECT_EQ(scaled.kernel.numBlocks, full.kernel.numBlocks / 8);
    // Tiny grids never scale below a few dispatch waves.
    Workload small = Suite::get("pns", 64);
    EXPECT_EQ(small.kernel.numBlocks, 18u);
}

TEST(Suite, TypesPartitionTheSuite)
{
    auto stride = Suite::namesOfType(WorkloadType::Stride);
    auto mp = Suite::namesOfType(WorkloadType::Mp);
    auto uncoal = Suite::namesOfType(WorkloadType::Uncoal);
    EXPECT_EQ(stride.size(), 7u);
    EXPECT_EQ(mp.size(), 3u);
    EXPECT_EQ(uncoal.size(), 4u);
    std::set<std::string> all(stride.begin(), stride.end());
    all.insert(mp.begin(), mp.end());
    all.insert(uncoal.begin(), uncoal.end());
    EXPECT_EQ(all.size(), 14u);
}

TEST(Suite, VariantsApplyTransforms)
{
    Workload w = Suite::get("scalar", 32);
    KernelDesc stride = w.variant(SwPrefKind::Stride);
    EXPECT_GT(stride.prefInstsPerWarp(), 0u);
    KernelDesc reg = w.variant(SwPrefKind::Register);
    EXPECT_LT(reg.maxBlocksPerCore, w.kernel.maxBlocksPerCore);
    // mp-type kernels have no loops: stride insertion is a no-op,
    // IP insertion is not.
    Workload mp = Suite::get("backprop", 32);
    EXPECT_EQ(mp.variant(SwPrefKind::Stride).prefInstsPerWarp(), 0u);
    EXPECT_GT(mp.variant(SwPrefKind::IP).prefInstsPerWarp(), 0u);
}

TEST(Suite, DelinquentLoadMetadataMatchesTableIII)
{
    EXPECT_EQ(Suite::get("stream", 64).info.paperDelinquentIp, 5u);
    EXPECT_EQ(Suite::get("cfd", 64).info.paperDelinquentIp, 36u);
    EXPECT_EQ(Suite::get("linear", 64).info.paperDelinquentIp, 27u);
    EXPECT_EQ(Suite::get("black", 64).info.paperDelinquentStride, 3u);
}

TEST(Suite, EveryKernelIsFinalizedAndRunnableShape)
{
    for (const auto &n : Suite::memoryIntensiveNames()) {
        Workload w = Suite::get(n, 64);
        EXPECT_TRUE(w.kernel.finalized()) << n;
        EXPECT_GT(w.kernel.warpInstsPerWarp(), 0u) << n;
        EXPECT_GT(w.kernel.memInstsPerWarp(), 0u) << n;
    }
}

} // namespace
} // namespace mtp
