/**
 * @file
 * Tests for the observability layer's JSON support: string escaping,
 * the validation parser, and the Chrome trace-event schema checker.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hh"

namespace mtp {
namespace obs {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("core0.ipc"), "core0.ipc");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonParse, Scalars)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("42", v));
    EXPECT_TRUE(v.isNumber());
    EXPECT_DOUBLE_EQ(v.number, 42.0);

    ASSERT_TRUE(parseJson("-1.5e3", v));
    EXPECT_DOUBLE_EQ(v.number, -1500.0);

    ASSERT_TRUE(parseJson("true", v));
    EXPECT_EQ(v.kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(v.boolean);

    ASSERT_TRUE(parseJson("null", v));
    EXPECT_EQ(v.kind, JsonValue::Kind::Null);

    ASSERT_TRUE(parseJson("\"a\\n\\\"b\\\"\"", v));
    EXPECT_TRUE(v.isString());
    EXPECT_EQ(v.str, "a\n\"b\"");
}

TEST(JsonParse, NestedStructure)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})", v));
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
    const JsonValue *b = a->array[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->str, "c");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("", v, &err));
    EXPECT_FALSE(parseJson("{", v, &err));
    EXPECT_FALSE(parseJson("[1,]", v, &err));
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", v, &err));
    EXPECT_FALSE(parseJson("\"unterminated", v, &err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RejectsExcessiveNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(deep, v, &err));
}

TEST(ChromeTraceSchema, AcceptsMinimalValidTrace)
{
    const char *doc = R"({
        "displayTimeUnit": "ns",
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "core0"}},
            {"name": "req:mrq_enq", "ph": "i", "ts": 10, "pid": 0,
             "tid": 0, "s": "t"},
            {"name": "mem:load", "ph": "X", "ts": 10, "dur": 90,
             "pid": 0, "tid": 0},
            {"name": "core0.ipc", "ph": "C", "ts": 100, "pid": 0,
             "tid": 0, "args": {"value": 0.5}}
        ]
    })";
    std::string err;
    EXPECT_TRUE(validateChromeTrace(doc, &err)) << err;
}

TEST(ChromeTraceSchema, RejectsMissingTraceEvents)
{
    std::string err;
    EXPECT_FALSE(validateChromeTrace("{}", &err));
    EXPECT_FALSE(validateChromeTrace("[1, 2]", &err));
}

TEST(ChromeTraceSchema, RejectsBadEvents)
{
    std::string err;
    // "X" without dur.
    EXPECT_FALSE(validateChromeTrace(
        R"({"traceEvents": [{"name": "a", "ph": "X", "ts": 1,
            "pid": 0, "tid": 0}]})",
        &err));
    // Counter without args.
    EXPECT_FALSE(validateChromeTrace(
        R"({"traceEvents": [{"name": "a", "ph": "C", "ts": 1,
            "pid": 0, "tid": 0}]})",
        &err));
    // Missing name.
    EXPECT_FALSE(validateChromeTrace(
        R"({"traceEvents": [{"ph": "i", "ts": 1, "pid": 0,
            "tid": 0}]})",
        &err));
    // Non-numeric ts.
    EXPECT_FALSE(validateChromeTrace(
        R"({"traceEvents": [{"name": "a", "ph": "i", "ts": "x",
            "pid": 0, "tid": 0}]})",
        &err));
}

} // namespace
} // namespace obs
} // namespace mtp
