/**
 * @file
 * Sampler semantics: probe kinds (gauge / counter / rate / ratio),
 * boundary arithmetic, and the nextSampleAt() contract the GPU's
 * cycle-skipping loop relies on.
 */

#include <gtest/gtest.h>

#include "common/types.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"

namespace mtp {
namespace obs {
namespace {

TEST(Sampler, InactiveUntilStart)
{
    Sampler s;
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.nextSampleAt(), invalidCycle);
    EXPECT_FALSE(s.due(0));
    EXPECT_FALSE(s.due(1'000'000));
}

TEST(Sampler, EmitsSchemaOnStart)
{
    Sampler s;
    CaptureSink cap;
    s.addSink(&cap);
    double x = 0.0;
    s.addProbe("a", trackForCore(0), Sampler::Kind::Gauge,
               [&](Cycle) { return x; });
    s.addProbe("b", trackGlobal, Sampler::Kind::Counter,
               [&](Cycle) { return x; });
    EXPECT_TRUE(cap.schema.empty());
    s.start(100);
    ASSERT_EQ(cap.schema.size(), 2u);
    EXPECT_EQ(cap.schema[0].name, "a");
    EXPECT_EQ(cap.schema[0].pid, trackForCore(0));
    EXPECT_EQ(cap.schema[1].name, "b");
    EXPECT_EQ(cap.schema[1].pid, trackGlobal);
    EXPECT_EQ(cap.column("b"), 1);
    EXPECT_EQ(cap.column("missing"), -1);
}

TEST(Sampler, FirstBoundaryIsOnePeriodIn)
{
    Sampler s;
    double x = 0.0;
    s.addProbe("a", 0, Sampler::Kind::Gauge, [&](Cycle) { return x; });
    s.start(100);
    EXPECT_TRUE(s.active());
    EXPECT_EQ(s.nextSampleAt(), 100u);
    EXPECT_FALSE(s.due(0));
    EXPECT_FALSE(s.due(99));
    EXPECT_TRUE(s.due(100));
    s.sample(100);
    EXPECT_EQ(s.nextSampleAt(), 200u);
    EXPECT_EQ(s.samplesTaken(), 1u);
}

TEST(Sampler, KindSemantics)
{
    Sampler s;
    CaptureSink cap;
    s.addSink(&cap);
    double gauge = 0.0, counter = 0.0, rate = 0.0;
    double num = 0.0, den = 0.0;
    s.addProbe("g", 0, Sampler::Kind::Gauge,
               [&](Cycle) { return gauge; });
    s.addProbe("c", 0, Sampler::Kind::Counter,
               [&](Cycle) { return counter; });
    s.addProbe("r", 0, Sampler::Kind::Rate,
               [&](Cycle) { return rate; });
    s.addProbe(
        "q", 0, Sampler::Kind::Ratio, [&](Cycle) { return num; },
        [&](Cycle) { return den; });
    s.start(100);

    gauge = 7.0;
    counter = 40.0;
    rate = 50.0;
    num = 3.0;
    den = 4.0;
    s.sample(100);
    ASSERT_EQ(cap.samples.size(), 1u);
    EXPECT_EQ(cap.samples[0].cycle, 100u);
    EXPECT_DOUBLE_EQ(cap.samples[0].values[0], 7.0);   // instantaneous
    EXPECT_DOUBLE_EQ(cap.samples[0].values[1], 40.0);  // delta from 0
    EXPECT_DOUBLE_EQ(cap.samples[0].values[2], 0.5);   // 50 / 100
    EXPECT_DOUBLE_EQ(cap.samples[0].values[3], 0.75);  // 3 / 4

    // Second period: deltas restart from the previous snapshot.
    gauge = 2.0;
    counter = 45.0;
    rate = 150.0;
    num = 3.0; // numerator flat
    den = 8.0;
    s.sample(200);
    ASSERT_EQ(cap.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(cap.samples[1].values[0], 2.0);
    EXPECT_DOUBLE_EQ(cap.samples[1].values[1], 5.0);
    EXPECT_DOUBLE_EQ(cap.samples[1].values[2], 1.0);
    EXPECT_DOUBLE_EQ(cap.samples[1].values[3], 0.0); // 0 / 4

    // Third period: flat denominator must not divide by zero.
    num = 9.0;
    s.sample(300);
    EXPECT_DOUBLE_EQ(cap.samples[2].values[3], 0.0);

    // Fourth period: the ratio picks up from the stored snapshots.
    num = 11.0;
    den = 12.0;
    s.sample(400);
    EXPECT_DOUBLE_EQ(cap.samples[3].values[3], 0.5); // 2 / 4
}

TEST(Sampler, LateSampleAdvancesPastNow)
{
    Sampler s;
    double x = 0.0;
    s.addProbe("a", 0, Sampler::Kind::Gauge, [&](Cycle) { return x; });
    s.start(100);
    // A sample taken far past several boundaries (only possible when
    // armed late) advances next_ beyond now, not one period at a time.
    s.sample(570);
    EXPECT_EQ(s.nextSampleAt(), 600u);
    EXPECT_FALSE(s.due(599));
    EXPECT_TRUE(s.due(600));
}

} // namespace
} // namespace obs
} // namespace mtp
