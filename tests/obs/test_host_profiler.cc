/**
 * @file
 * Host profiler unit + integration tests (DESIGN.md §12):
 *
 *  - the self-time accounting identity: per thread, phase self-times
 *    sum *exactly* to activeNs, and wait-class spans land in waitNs;
 *  - ring-buffer wraparound keeps the newest events;
 *  - scopes on the disabled path record nothing;
 *  - the host.* JSONL artifact parses line by line with the schema
 *    `mtp-report host` consumes;
 *  - a Chrome trace with merged host tracks (ObsConfig.hostProfile)
 *    validates and carries the host-thread pids and the host.simCycle
 *    clock-sync counter;
 *  - profiling is observer-only: simulated results are bit-identical
 *    with --host-profile on or off, at shards 1 and 4.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/host_profiler.hh"
#include "obs/json.hh"
#include "obs/observer.hh"
#include "obs/sink.hh"
#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

using obs::HostPhase;
using obs::HostProfiler;
using obs::HostScope;

/** Burn wall-clock without sleeping (keeps the span in busy time). */
void
busyLoop(std::uint64_t ns)
{
    const std::uint64_t until = HostProfiler::nowNs() + ns;
    while (HostProfiler::nowNs() < until) {
    }
}

const HostProfiler::ThreadSnapshot *
findThread(const HostProfiler::Snapshot &snap, const std::string &name)
{
    for (const auto &t : snap.threads)
        if (t.name == name)
            return &t;
    return nullptr;
}

std::uint64_t
phaseNs(const HostProfiler::ThreadSnapshot &t, HostPhase p)
{
    return t.phaseNs[static_cast<int>(p)];
}

std::uint64_t
phaseCount(const HostProfiler::ThreadSnapshot &t, HostPhase p)
{
    return t.phaseCount[static_cast<int>(p)];
}

TEST(HostProfiler, NestedScopesObeySelfTimeIdentity)
{
    HostProfiler::disable();
    HostProfiler::enable();

    // All scopes closed before the snapshot, so the identity is exact:
    // the worker thread runs outer(RunTask){ self, mid(CoreTick){
    // self, inner(MemTick) }, wait(BarrierWait) } and joins.
    std::thread worker([] {
        HostProfiler::nameThread("hp_nest");
        HostScope outer(HostPhase::RunTask);
        busyLoop(2'000'000);
        {
            HostScope mid(HostPhase::CoreTick);
            busyLoop(2'000'000);
            {
                HostScope inner(HostPhase::MemTick);
                busyLoop(2'000'000);
            }
        }
        {
            HostScope wait(HostPhase::BarrierWait);
            busyLoop(1'000'000);
        }
    });
    worker.join();

    HostProfiler::Snapshot snap = HostProfiler::snapshot();
    const HostProfiler::ThreadSnapshot *t = findThread(snap, "hp_nest");
    ASSERT_NE(t, nullptr);

    // Phase rows are *self* time and must sum to activeNs exactly.
    std::uint64_t sum = 0;
    for (int p = 0; p < obs::kNumHostPhases; ++p)
        sum += t->phaseNs[p];
    EXPECT_EQ(sum, t->activeNs);

    // Only the outermost scope accrues activeNs, so the RunTask span
    // (self + all children) is the whole active window.
    EXPECT_GE(t->activeNs, 7'000'000u);
    EXPECT_EQ(phaseCount(*t, HostPhase::RunTask), 1u);
    EXPECT_EQ(phaseCount(*t, HostPhase::CoreTick), 1u);
    EXPECT_EQ(phaseCount(*t, HostPhase::MemTick), 1u);

    // Each scope's self time covers its own busy loop but not its
    // children's: CoreTick burned 2 ms itself and MemTick's 2 ms must
    // not be double-counted into it.
    EXPECT_GE(phaseNs(*t, HostPhase::RunTask), 2'000'000u);
    EXPECT_GE(phaseNs(*t, HostPhase::CoreTick), 2'000'000u);
    EXPECT_GE(phaseNs(*t, HostPhase::MemTick), 2'000'000u);
    EXPECT_LT(phaseNs(*t, HostPhase::CoreTick), 4'000'000u);

    // Wait-class spans accrue to waitNs regardless of nesting.
    EXPECT_EQ(t->waitNs, phaseNs(*t, HostPhase::BarrierWait));
    EXPECT_GE(t->waitNs, 1'000'000u);

    HostProfiler::disable();
}

TEST(HostProfiler, RingBufferWrapsKeepingNewestEvents)
{
    constexpr std::uint32_t kCap = 8;
    HostProfiler::disable();
    HostProfiler::enable(kCap);

    // 40 Dispatch scopes followed by kCap Sample scopes: after
    // wraparound the ring must hold exactly the kCap newest events,
    // i.e. only Sample, oldest-first.
    std::thread worker([] {
        HostProfiler::nameThread("hp_ring");
        for (int i = 0; i < 40; ++i)
            HostScope scope(HostPhase::Dispatch);
        for (std::uint32_t i = 0; i < kCap; ++i)
            HostScope scope(HostPhase::Sample);
    });
    worker.join();

    HostProfiler::Snapshot snap =
        HostProfiler::snapshot(/*includeEvents=*/true);
    const HostProfiler::ThreadSnapshot *t = findThread(snap, "hp_ring");
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(t->events.size(), kCap);
    for (std::size_t i = 0; i < t->events.size(); ++i) {
        EXPECT_EQ(t->events[i].phase, HostPhase::Sample) << "slot " << i;
        if (i) {
            EXPECT_GE(t->events[i].startNs, t->events[i - 1].startNs);
        }
    }
    // The accumulators still saw everything the ring forgot.
    EXPECT_EQ(phaseCount(*t, HostPhase::Dispatch), 40u);
    EXPECT_EQ(phaseCount(*t, HostPhase::Sample), kCap);

    HostProfiler::disable();
}

TEST(HostProfiler, DisabledScopesRecordNothing)
{
    HostProfiler::disable();
    ASSERT_FALSE(HostProfiler::enabled());

    std::thread worker([] {
        HostProfiler::nameThread("hp_disabled");
        for (int i = 0; i < 100; ++i) {
            HostScope scope(HostPhase::CoreTick);
            HostScope hot(HostPhase::MemTick, HostProfiler::enabled());
        }
    });
    worker.join();

    // A fresh enable starts a new generation; the disabled-path scopes
    // (and the nameThread call) never registered the thread.
    HostProfiler::enable();
    HostProfiler::Snapshot snap = HostProfiler::snapshot(true);
    EXPECT_EQ(findThread(snap, "hp_disabled"), nullptr);
    HostProfiler::disable();
}

TEST(HostProfiler, JsonlArtifactParsesWithReportSchema)
{
    HostProfiler::disable();
    HostProfiler::enable();
    std::thread worker([] {
        HostProfiler::nameThread("hp_jsonl");
        HostScope outer(HostPhase::RunTask);
        busyLoop(500'000);
        HostScope inner(HostPhase::Summarize);
        busyLoop(500'000);
    });
    worker.join();
    HostProfiler::Snapshot snap = HostProfiler::snapshot();

    const std::string path = "host_profiler_test.host.jsonl";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::writeHostProfileJsonl(f, snap,
                               {{"host.cache.hits", 3.0},
                                {"host.runsPerSec", 12.5}});
    std::fclose(f);

    std::ifstream in(path);
    std::string line;
    unsigned metas = 0, threadLines = 0, counters = 0;
    bool sawJsonlThread = false;
    while (std::getline(in, line)) {
        obs::JsonValue doc;
        std::string error;
        ASSERT_TRUE(obs::parseJson(line, doc, &error)) << error;
        const obs::JsonValue *type = doc.find("type");
        ASSERT_NE(type, nullptr);
        if (type->str == "host.meta") {
            ++metas;
            EXPECT_NE(doc.find("wallNs"), nullptr);
            EXPECT_NE(doc.find("threads"), nullptr);
        } else if (type->str == "host.thread") {
            ++threadLines;
            const obs::JsonValue *name = doc.find("name");
            ASSERT_NE(name, nullptr);
            if (name->str == "hp_jsonl") {
                sawJsonlThread = true;
                const obs::JsonValue *phases = doc.find("phases");
                ASSERT_NE(phases, nullptr);
                EXPECT_TRUE(phases->isObject());
                const obs::JsonValue *run = phases->find("run_task");
                ASSERT_NE(run, nullptr);
                EXPECT_NE(run->find("ns"), nullptr);
                EXPECT_NE(run->find("count"), nullptr);
            }
        } else if (type->str == "host.counter") {
            ++counters;
        }
    }
    EXPECT_EQ(metas, 1u);
    EXPECT_EQ(threadLines, snap.threads.size());
    EXPECT_TRUE(sawJsonlThread);
    EXPECT_EQ(counters, 2u);
    std::remove(path.c_str());
    HostProfiler::disable();
}

TEST(HostProfiler, MergedChromeTraceValidatesWithHostTracks)
{
    HostProfiler::disable();

    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    KernelDesc kernel = test::tinyStreamKernel(2, 4, 8, 1);
    RunResult plain = simulate(cfg, kernel);

    const std::string path = "host_profiler_test.trace.json";
    obs::ObsConfig ocfg;
    ocfg.samplePeriod = 137;
    ocfg.chromePath = path;
    ocfg.hostProfile = true;
    RunResult traced = simulate(cfg, kernel, ocfg);
    HostProfiler::disable();

    // Host profiling is observer-only.
    std::ostringstream a, b;
    plain.stats.dumpText(a);
    traced.stats.dumpText(b);
    EXPECT_EQ(a.str(), b.str());

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    ASSERT_TRUE(obs::validateChromeTrace(ss.str(), &err)) << err;

    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(ss.str(), doc, nullptr));
    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // The merged trace must carry sim tracks (small pids), at least
    // one host-thread track (pid >= trackForHostThread(0)) with 'X'
    // spans named after host phases, and the host.simCycle clock-sync
    // counter on its dedicated track.
    bool sawSimEvent = false, sawHostSpan = false, sawClockSync = false;
    bool sawHostTrackName = false;
    for (const auto &ev : events->array) {
        const obs::JsonValue *pid = ev.find("pid");
        const obs::JsonValue *ph = ev.find("ph");
        const obs::JsonValue *name = ev.find("name");
        if (!pid || !ph || !name)
            continue;
        int p = static_cast<int>(pid->number);
        if (p < obs::trackHostClock && ph->str != "M")
            sawSimEvent = true;
        if (p >= obs::trackForHostThread(0) && ph->str == "X")
            sawHostSpan = true;
        if (p == obs::trackHostClock && name->str == "host.simCycle" &&
            ph->str == "C")
            sawClockSync = true;
        if (ph->str == "M" && name->str == "process_name") {
            const obs::JsonValue *args = ev.find("args");
            const obs::JsonValue *n = args ? args->find("name") : nullptr;
            if (n && n->str.rfind("host: ", 0) == 0)
                sawHostTrackName = true;
        }
    }
    EXPECT_TRUE(sawSimEvent);
    EXPECT_TRUE(sawHostSpan);
    EXPECT_TRUE(sawClockSync);
    EXPECT_TRUE(sawHostTrackName);
    std::remove(path.c_str());
}

TEST(HostProfiler, ProfilingNeverPerturbsSimResults)
{
    for (unsigned shards : {1u, 4u}) {
        HostProfiler::disable();
        SimConfig cfg = test::tinyConfig();
        cfg.hwPref = HwPrefKind::MTHWP;
        cfg.throttleEnable = true;
        cfg.shards = shards;
        KernelDesc kernel = test::tinyStreamKernel(2, 6, 4);

        RunResult off = simulate(cfg, kernel);
        obs::ObsConfig ocfg;
        ocfg.hostProfile = true;
        RunResult on = simulate(cfg, kernel, ocfg);
        HostProfiler::disable();

        std::ostringstream a, b;
        off.stats.dumpText(a);
        on.stats.dumpText(b);
        EXPECT_EQ(a.str(), b.str()) << "shards=" << shards;
    }
}

} // namespace
} // namespace mtp
