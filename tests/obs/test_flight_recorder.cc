/**
 * @file
 * Flight recorder + watchdog tests (DESIGN.md §12):
 *
 *  - gauge pool lifecycle: acquire/set/add, JSONL dump, release makes
 *    the handle inert and frees the slot;
 *  - the watchdog fires on a genuinely stalled executor worker (no
 *    progress beats for a full deadline window) and leaves a parseable
 *    JSONL artifact;
 *  - it never false-fires while the engine keeps beating, even over
 *    several deadline windows of wall-clock.
 *
 * Timing margins are generous on purpose: the watchdog tests run
 * under TSan in the host-obs CI job, where every sleep and wake is
 * slower. The fire test waits up to ~20 s for a 0.25 s deadline; the
 * no-false-fire test beats at 10x the deadline poll rate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "driver/parallel_executor.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"

namespace mtp {
namespace {

using obs::FlightRecorder;

TEST(FlightRecorder, BeatsAreMonotonic)
{
    std::uint64_t b0 = FlightRecorder::beats();
    FlightRecorder::beat();
    FlightRecorder::beat();
    EXPECT_EQ(FlightRecorder::beats(), b0 + 2);
}

TEST(FlightRecorder, GaugeLifecycleAndJsonlDump)
{
    FlightRecorder::Gauge g =
        FlightRecorder::acquireGauge("test.shard0.cycle");
    ASSERT_TRUE(g.valid());
    g.set(7);
    g.add(5);

    const std::string path = "flight_recorder_test.jsonl";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    FlightRecorder::dumpJsonl(f, "unit");
    std::fclose(f);

    std::ifstream in(path);
    std::string line;
    bool sawDump = false, sawGauge = false;
    while (std::getline(in, line)) {
        obs::JsonValue doc;
        std::string error;
        ASSERT_TRUE(obs::parseJson(line, doc, &error)) << error;
        const obs::JsonValue *type = doc.find("type");
        ASSERT_NE(type, nullptr);
        if (type->str == "flight.dump") {
            sawDump = true;
            const obs::JsonValue *reason = doc.find("reason");
            ASSERT_NE(reason, nullptr);
            EXPECT_EQ(reason->str, "unit");
            EXPECT_NE(doc.find("beats"), nullptr);
        } else if (type->str == "flight.gauge") {
            const obs::JsonValue *name = doc.find("name");
            if (name && name->str == "test.shard0.cycle") {
                sawGauge = true;
                const obs::JsonValue *value = doc.find("value");
                ASSERT_NE(value, nullptr);
                EXPECT_EQ(value->number, 12.0);
            }
        }
    }
    EXPECT_TRUE(sawDump);
    EXPECT_TRUE(sawGauge);
    std::remove(path.c_str());

    // Release: the handle goes inert (set() is a no-op, not a crash)
    // and the slot is reusable.
    FlightRecorder::releaseGauge(g);
    EXPECT_FALSE(g.valid());
    g.set(99);
    FlightRecorder::Gauge g2 = FlightRecorder::acquireGauge("test.reuse");
    EXPECT_TRUE(g2.valid());
    FlightRecorder::releaseGauge(g2);
}

TEST(Watchdog, FiresOnStalledWorkerAndDumpsJsonl)
{
    const std::string path = "flight_watchdog_test.jsonl";
    std::remove(path.c_str());

    // A worker wedged inside a task: the executor's per-task beat
    // never happens, so the global beat counter freezes — exactly the
    // hang signature the watchdog exists to catch.
    driver::ParallelExecutor exec(2);
    std::atomic<bool> release{false};
    auto stalled = exec.submit([&release] {
        while (!release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return 0;
    });

    obs::Watchdog dog(0.25, path);
    for (int i = 0; i < 2000 && !dog.fired(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(dog.fired());

    release.store(true, std::memory_order_release);
    stalled.get();

    // The artifact must hold a parseable flight.dump attributed to the
    // watchdog (not a crash), plus the gauge/thread context lines.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    bool sawWatchdogDump = false;
    while (std::getline(in, line)) {
        obs::JsonValue doc;
        std::string error;
        ASSERT_TRUE(obs::parseJson(line, doc, &error)) << error;
        const obs::JsonValue *type = doc.find("type");
        const obs::JsonValue *reason = doc.find("reason");
        if (type && type->str == "flight.dump" && reason &&
            reason->str == "watchdog")
            sawWatchdogDump = true;
    }
    EXPECT_TRUE(sawWatchdogDump);
    std::remove(path.c_str());
}

TEST(Watchdog, DoesNotFireWhileEngineBeats)
{
    // Beat every 50 ms against a 0.6 s deadline for ~1.5 s: the frozen
    // window re-anchors on every beat and never approaches the
    // deadline, so a healthy engine must not trip the dump.
    obs::Watchdog dog(0.6);
    for (int i = 0; i < 30; ++i) {
        FlightRecorder::beat();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_FALSE(dog.fired());
}

} // namespace
} // namespace mtp
