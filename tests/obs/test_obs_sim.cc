/**
 * @file
 * End-to-end observability tests against real simulations:
 *
 *  - observation is read-only: end-of-run results are bit-identical
 *    with sampling + tracing on or off, under both the fast-forward
 *    and the naive cycle loop;
 *  - the emitted time series is golden-checked two ways: the fast loop
 *    must reproduce the naive loop's rows exactly (cycle skipping
 *    never jumps a sample boundary), and both must match an oracle
 *    that re-simulates with manual step() calls and recomputes every
 *    probe from raw counters at each period boundary;
 *  - a Chrome trace generated through the same path as `mtp-sim
 *    --trace-out` validates against the trace-event schema, and a
 *    JSONL stream parses line by line;
 *  - the legacy MTP_THROTTLE_TRACE stderr hook's replacement emits
 *    throttle events through the sink API.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/observer.hh"
#include "sim/gpu.hh"
#include "tests/test_helpers.hh"

namespace mtp {
namespace {

std::string
dumpStats(const RunResult &r)
{
    std::ostringstream os;
    r.stats.dumpText(os);
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SimConfig
observedConfig()
{
    SimConfig cfg = test::tinyConfig();
    cfg.hwPref = HwPrefKind::MTHWP;
    cfg.throttleEnable = true;
    cfg.throttlePeriod = 500;
    return cfg;
}

std::vector<std::pair<std::string, KernelDesc>>
observedKernels()
{
    std::vector<std::pair<std::string, KernelDesc>> kernels;
    kernels.emplace_back("stream", test::tinyStreamKernel(2, 4, 8, 1));
    kernels.emplace_back("mp", test::tinyMpKernel(2, 8));
    return kernels;
}

TEST(ObsSim, ObservationPreservesResults)
{
    for (const auto &[name, kernel] : observedKernels()) {
        for (bool fastForward : {true, false}) {
            SimConfig cfg = observedConfig();
            cfg.fastForward = fastForward;
            RunResult plain = simulate(cfg, kernel);

            obs::ObsConfig ocfg;
            ocfg.samplePeriod = 137;
            ocfg.traceLifecycle = true;
            ocfg.traceThrottle = true;
            obs::Observer observer(ocfg);
            obs::CaptureSink *cap = observer.addCapture();
            Gpu gpu(cfg, kernel, &observer);
            RunResult observed = gpu.run();

            std::string label = name + (fastForward ? "/fast" : "/naive");
            EXPECT_EQ(observed.cycles, plain.cycles) << label;
            EXPECT_EQ(observed.warpInsts, plain.warpInsts) << label;
            EXPECT_EQ(observed.dramBytes, plain.dramBytes) << label;
            EXPECT_EQ(observed.prefFills, plain.prefFills) << label;
            EXPECT_EQ(dumpStats(observed), dumpStats(plain)) << label;
            EXPECT_GT(cap->samples.size(), 0u) << label;
            EXPECT_GT(cap->events.size(), 0u) << label;
        }
    }
}

TEST(ObsSim, FastLoopReproducesNaiveTimeSeriesExactly)
{
    for (const auto &[name, kernel] : observedKernels()) {
        for (Cycle period : {Cycle(137), Cycle(256)}) {
            obs::ObsConfig ocfg;
            ocfg.samplePeriod = period;

            SimConfig fastCfg = observedConfig();
            fastCfg.fastForward = true;
            obs::Observer fastObs(ocfg);
            obs::CaptureSink *fastCap = fastObs.addCapture();
            Gpu fastGpu(fastCfg, kernel, &fastObs);
            fastGpu.run();

            SimConfig naiveCfg = observedConfig();
            naiveCfg.fastForward = false;
            obs::Observer naiveObs(ocfg);
            obs::CaptureSink *naiveCap = naiveObs.addCapture();
            Gpu naiveGpu(naiveCfg, kernel, &naiveObs);
            naiveGpu.run();

            std::string label = name + "@" + std::to_string(period);
            ASSERT_EQ(fastCap->schema.size(), naiveCap->schema.size())
                << label;
            ASSERT_EQ(fastCap->samples.size(), naiveCap->samples.size())
                << label;
            ASSERT_GT(fastCap->samples.size(), 1u) << label;
            for (std::size_t i = 0; i < fastCap->samples.size(); ++i) {
                const auto &f = fastCap->samples[i];
                const auto &n = naiveCap->samples[i];
                EXPECT_EQ(f.cycle, n.cycle) << label << " row " << i;
                // Boundaries land exactly on multiples of the period:
                // a skip may never jump one.
                EXPECT_EQ(f.cycle % period, 0u) << label << " row " << i;
                ASSERT_EQ(f.values.size(), n.values.size());
                for (std::size_t c = 0; c < f.values.size(); ++c)
                    EXPECT_EQ(f.values[c], n.values[c])
                        << label << " row " << i << " col "
                        << fastCap->schema[c].name;
            }
        }
    }
}

/**
 * Oracle golden check: re-simulate with manual step() calls (naive
 * loop, no observer) and recompute a representative probe of every
 * kind from raw component counters at each period boundary. The
 * sampler runs inside step() after all components ticked and before
 * the cycle counter advances, so the oracle reads its counters right
 * after the step() call whose cycle (now() - 1) is a boundary.
 */
TEST(ObsSim, TimeSeriesMatchesPerPeriodOracle)
{
    for (const auto &[name, kernel] : observedKernels()) {
        const Cycle period = 137;
        obs::ObsConfig ocfg;
        ocfg.samplePeriod = period;

        SimConfig cfg = observedConfig();
        obs::Observer observer(ocfg);
        obs::CaptureSink *cap = observer.addCapture();
        {
            Gpu gpu(cfg, kernel, &observer);
            gpu.run();
        }

        struct OracleRow
        {
            Cycle cycle;
            double ipc0, mrqOcc0, mshrOcc0, accuracy0, degree0;
            double rowHit0, blp0, bufOcc0, injStallRate;
        };
        std::vector<OracleRow> oracle;
        {
            SimConfig naiveCfg = cfg;
            naiveCfg.fastForward = false;
            Gpu gpu(naiveCfg, kernel, nullptr);
            double lastInsts = 0.0, lastUseful = 0.0, lastFills = 0.0;
            double lastRowHits = 0.0, lastRw = 0.0, lastStalls = 0.0;
            while (!gpu.done()) {
                gpu.step();
                Cycle t = gpu.now() - 1;
                if (t == 0 || t % period != 0)
                    continue;
                OracleRow row;
                row.cycle = t;
                double insts = static_cast<double>(
                    gpu.core(0).counters().warpInstsIssued);
                row.ipc0 = (insts - lastInsts) / period;
                lastInsts = insts;
                row.mrqOcc0 =
                    static_cast<double>(gpu.mem().mrq(0).size());
                row.mshrOcc0 =
                    static_cast<double>(gpu.core(0).mshr().size());
                double useful = static_cast<double>(
                    gpu.core(0).prefCache().counters().useful);
                double fills = static_cast<double>(
                    gpu.core(0).prefCache().counters().fills);
                double dFills = fills - lastFills;
                row.accuracy0 =
                    dFills != 0.0 ? (useful - lastUseful) / dFills : 0.0;
                lastUseful = useful;
                lastFills = fills;
                row.degree0 = static_cast<double>(
                    gpu.core(0).throttle()->degree());
                const auto &ch = gpu.mem().channel(0);
                double rowHits =
                    static_cast<double>(ch.counters().rowHits);
                double rw = static_cast<double>(ch.counters().reads +
                                                ch.counters().writes);
                double dRw = rw - lastRw;
                row.rowHit0 =
                    dRw != 0.0 ? (rowHits - lastRowHits) / dRw : 0.0;
                lastRowHits = rowHits;
                lastRw = rw;
                row.blp0 = static_cast<double>(ch.busyBanks(t));
                row.bufOcc0 =
                    static_cast<double>(ch.bufferOccupancy());
                double stalls =
                    static_cast<double>(gpu.mem().injCreditStalls());
                row.injStallRate = (stalls - lastStalls) / period;
                lastStalls = stalls;
                oracle.push_back(row);
            }
        }

        ASSERT_GT(oracle.size(), 1u) << name;
        ASSERT_EQ(cap->samples.size(), oracle.size()) << name;
        auto col = [&](const char *n) {
            int i = cap->column(n);
            EXPECT_GE(i, 0) << n;
            return static_cast<std::size_t>(i);
        };
        std::size_t cIpc = col("core0.ipc");
        std::size_t cMrq = col("core0.mrqOcc");
        std::size_t cMshr = col("core0.mshrOcc");
        std::size_t cAcc = col("core0.prefAccuracy");
        std::size_t cDeg = col("core0.throttleDegree");
        std::size_t cRow = col("dram0.rowHitRate");
        std::size_t cBlp = col("dram0.blp");
        std::size_t cBuf = col("dram0.bufOcc");
        std::size_t cStall = col("mem.injCreditStalls");
        for (std::size_t i = 0; i < oracle.size(); ++i) {
            const auto &got = cap->samples[i];
            const auto &want = oracle[i];
            std::string at = name + " row " + std::to_string(i);
            ASSERT_EQ(got.cycle, want.cycle) << at;
            EXPECT_NEAR(got.values[cIpc], want.ipc0, 1e-9) << at;
            EXPECT_NEAR(got.values[cMrq], want.mrqOcc0, 1e-9) << at;
            EXPECT_NEAR(got.values[cMshr], want.mshrOcc0, 1e-9) << at;
            EXPECT_NEAR(got.values[cAcc], want.accuracy0, 1e-9) << at;
            EXPECT_NEAR(got.values[cDeg], want.degree0, 1e-9) << at;
            EXPECT_NEAR(got.values[cRow], want.rowHit0, 1e-9) << at;
            EXPECT_NEAR(got.values[cBlp], want.blp0, 1e-9) << at;
            EXPECT_NEAR(got.values[cBuf], want.bufOcc0, 1e-9) << at;
            EXPECT_NEAR(got.values[cStall], want.injStallRate, 1e-9)
                << at;
        }
    }
}

TEST(ObsSim, ChromeTraceFromSimulationValidates)
{
    // The same code path mtp-sim --trace-out takes: simulate() with an
    // ObsConfig naming a Chrome output file.
    std::string path = "obs_sim_test.trace.json";
    obs::ObsConfig ocfg;
    ocfg.samplePeriod = 256;
    ocfg.chromePath = path;
    SimConfig cfg = observedConfig();
    RunResult plain = simulate(cfg, observedKernels()[0].second);
    RunResult traced = simulate(cfg, observedKernels()[0].second, ocfg);
    EXPECT_EQ(dumpStats(traced), dumpStats(plain));

    std::string text = slurp(path);
    std::string err;
    ASSERT_TRUE(obs::validateChromeTrace(text, &err)) << err;

    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(text, doc, nullptr));
    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // Track metadata, lifecycle instants, spans and counter samples
    // must all be present.
    std::map<char, unsigned> phases;
    for (const auto &ev : events->array)
        ++phases[ev.find("ph")->str[0]];
    EXPECT_GT(phases['M'], 0u);
    EXPECT_GT(phases['i'], 0u);
    EXPECT_GT(phases['X'], 0u);
    EXPECT_GT(phases['C'], 0u);
    std::remove(path.c_str());
}

TEST(ObsSim, JsonlStreamParsesLineByLine)
{
    std::string path = "obs_sim_test.events.jsonl";
    obs::ObsConfig ocfg;
    ocfg.samplePeriod = 256;
    ocfg.jsonlPath = path;
    simulate(observedConfig(), observedKernels()[1].second, ocfg);

    std::ifstream in(path);
    std::string line;
    unsigned n = 0;
    while (std::getline(in, line)) {
        obs::JsonValue v;
        std::string err;
        ASSERT_TRUE(obs::parseJson(line, v, &err))
            << "line " << n << ": " << err;
        ASSERT_NE(v.find("t"), nullptr) << "line " << n;
        ++n;
    }
    EXPECT_GT(n, 0u);
    in.close();
    std::remove(path.c_str());
}

TEST(ObsSim, ThrottleEventsFlowThroughSinkApi)
{
    obs::ObsConfig ocfg;
    ocfg.traceThrottle = true;
    obs::Observer observer(ocfg);
    obs::CaptureSink *cap = observer.addCapture();
    SimConfig cfg = observedConfig();
    Gpu gpu(cfg, observedKernels()[0].second, &observer);
    gpu.run();

    unsigned updates = 0;
    for (const auto &ev : cap->events) {
        if (ev.name != "throttle:update")
            continue;
        ++updates;
        EXPECT_EQ(ev.ph, 'i');
        // Update events carry the Table I inputs.
        bool sawMerge = false, sawDegree = false;
        for (const auto &[k, v] : ev.args) {
            sawMerge |= k == "mergeRatio";
            sawDegree |= k == "degree";
        }
        EXPECT_TRUE(sawMerge);
        EXPECT_TRUE(sawDegree);
    }
    EXPECT_GT(updates, 0u);
}

} // namespace
} // namespace mtp
