/**
 * @file
 * Sink output formats: the CSV time series, the JSONL record stream
 * (every line must parse as one JSON object), the Chrome trace-event
 * file (must validate against the schema checker), per-run path
 * derivation and the TraceRecorder's event/histogram plumbing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/observer.hh"
#include "obs/sampler.hh"
#include "obs/sink.hh"
#include "obs/trace.hh"

namespace mtp {
namespace obs {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A unique scratch path under the test binary's working directory. */
std::string
scratchPath(const std::string &name)
{
    return "obs_sink_test_" + name;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line))
        out.push_back(line);
    return out;
}

TEST(CsvTimeSeriesSink, HeaderAndRows)
{
    std::string path = scratchPath("ts.csv");
    {
        CsvTimeSeriesSink sink(path);
        sink.sampleSchema({{"core0.ipc", 0}, {"dram0.blp", 1000}});
        sink.sample(100, {0.5, 3.0});
        sink.sample(200, {0.25, 0.0});
        sink.close();
    }
    auto rows = lines(slurp(path));
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], "cycle,core0.ipc,dram0.blp");
    EXPECT_EQ(rows[1], "100,0.5,3");
    EXPECT_EQ(rows[2], "200,0.25,0");
    std::remove(path.c_str());
}

TEST(JsonlSink, EveryLineIsOneJsonObject)
{
    std::string path = scratchPath("events.jsonl");
    {
        JsonlSink sink(path);
        sink.sampleSchema({{"a", 0}, {"b", 2000}});
        sink.sample(100, {1.5, 2.0});

        TraceEvent ev;
        ev.name = "req:mrq_enq";
        ev.ph = 'i';
        ev.ts = 42;
        ev.pid = trackForCore(1);
        ev.sargs.emplace_back("addr", "0x1000");
        sink.event(ev);

        Histogram h(0.0, 10.0, 2);
        h.sample(3.0);
        sink.histogram("latency.total", h);
        sink.close();
    }
    auto rows = lines(slurp(path));
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &row : rows) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(row, v, &err)) << row << ": " << err;
        ASSERT_TRUE(v.isObject()) << row;
        ASSERT_NE(v.find("t"), nullptr) << row;
    }

    JsonValue schema, sample, event, hist;
    ASSERT_TRUE(parseJson(rows[0], schema, nullptr));
    EXPECT_EQ(schema.find("t")->str, "schema");
    ASSERT_TRUE(parseJson(rows[1], sample, nullptr));
    EXPECT_EQ(sample.find("t")->str, "sample");
    EXPECT_DOUBLE_EQ(sample.find("cycle")->number, 100.0);
    EXPECT_DOUBLE_EQ(sample.find("v")->find("a")->number, 1.5);
    ASSERT_TRUE(parseJson(rows[2], event, nullptr));
    EXPECT_EQ(event.find("name")->str, "req:mrq_enq");
    EXPECT_EQ(event.find("args")->find("addr")->str, "0x1000");
    ASSERT_TRUE(parseJson(rows[3], hist, nullptr));
    EXPECT_EQ(hist.find("name")->str, "latency.total");
    EXPECT_DOUBLE_EQ(hist.find("count")->number, 1.0);
    std::remove(path.c_str());
}

TEST(ChromeTraceSink, OutputValidatesAgainstSchema)
{
    std::string path = scratchPath("trace.json");
    {
        ChromeTraceSink sink(path);

        TraceEvent meta;
        meta.name = "process_name";
        meta.ph = 'M';
        meta.pid = trackForCore(0);
        meta.sargs.emplace_back("name", "core0");
        sink.event(meta);

        TraceEvent span;
        span.name = "mem:load";
        span.ph = 'X';
        span.ts = 10;
        span.dur = 90;
        span.pid = trackForCore(0);
        span.sargs.emplace_back("addr", "0x80");
        sink.event(span);

        sink.sampleSchema({{"core0.ipc", trackForCore(0)},
                           {"dram1.blp", trackForChannel(1)}});
        sink.sample(100, {0.5, 2.0});
        sink.close();
    }
    std::string text = slurp(path);
    std::string err;
    EXPECT_TRUE(validateChromeTrace(text, &err)) << err;

    // Samples fan out to one counter event per column, on the
    // column's own track.
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc, nullptr));
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 4u);
    EXPECT_EQ(events->array[2].find("name")->str, "core0.ipc");
    EXPECT_DOUBLE_EQ(events->array[2].find("pid")->number,
                     trackForCore(0));
    EXPECT_EQ(events->array[3].find("name")->str, "dram1.blp");
    EXPECT_DOUBLE_EQ(events->array[3].find("pid")->number,
                     trackForChannel(1));
    EXPECT_DOUBLE_EQ(
        events->array[3].find("args")->find("value")->number, 2.0);
    std::remove(path.c_str());
}

TEST(ChromeTraceSink, EmptyTraceIsValid)
{
    std::string path = scratchPath("empty.json");
    {
        ChromeTraceSink sink(path);
        sink.close();
    }
    std::string err;
    EXPECT_TRUE(validateChromeTrace(slurp(path), &err)) << err;
    std::remove(path.c_str());
}

TEST(TraceRecorder, LoadLifecycleFeedsHistograms)
{
    TraceRecorder rec(/*lifecycle=*/true, /*throttle=*/true);
    CaptureSink cap;
    rec.addSink(&cap);

    const Addr addr = 0x1000;
    rec.stage(Stage::MrqEnqueue, addr, 0, 0, 0, 10);
    rec.stage(Stage::IcntInject, addr, 0, 0, 0, 18);
    rec.stage(Stage::DramEnqueue, addr, 0, 0, 0, 22);
    rec.stage(Stage::DramSchedule, addr, 0, 0, 0, 40);
    rec.stage(Stage::DramDone, addr, 0, 0, 0, 70);
    rec.stage(Stage::Return, addr, 0, 0, 0, 95);

    EXPECT_EQ(rec.completedRequests(), 1u);
    EXPECT_DOUBLE_EQ(rec.histMrqWait().mean(), 8.0);
    EXPECT_DOUBLE_EQ(rec.histIcntReq().mean(), 4.0);
    EXPECT_DOUBLE_EQ(rec.histDramQueue().mean(), 18.0);
    EXPECT_DOUBLE_EQ(rec.histDramService().mean(), 30.0);
    EXPECT_DOUBLE_EQ(rec.histIcntResp().mean(), 25.0);
    EXPECT_DOUBLE_EQ(rec.histTotal().mean(), 85.0);

    // 6 instants plus two 'X' spans (dram service + full round trip).
    unsigned spans = 0;
    for (const auto &ev : cap.events)
        if (ev.ph == 'X')
            ++spans;
    EXPECT_EQ(cap.events.size(), 8u);
    EXPECT_EQ(spans, 2u);

    // A later sharer of the same finalized address is a no-op.
    rec.stage(Stage::Return, addr, 0, 1, 0, 99);
    EXPECT_EQ(rec.completedRequests(), 1u);

    rec.finish();
    ASSERT_EQ(cap.histograms.size(), 6u);
    EXPECT_EQ(cap.histograms[0].first, "latency.mrqWait");
    EXPECT_EQ(cap.histograms[5].first, "latency.total");
    rec.finish(); // idempotent
    EXPECT_EQ(cap.histograms.size(), 6u);
}

TEST(TraceRecorder, StoreCompletesAtController)
{
    TraceRecorder rec(/*lifecycle=*/true, /*throttle=*/false);
    const Addr addr = 0x2000;
    rec.stage(Stage::MrqEnqueue, addr, 1, 0, 0, 5);
    rec.stage(Stage::DramSchedule, addr, 1, 0, 0, 20);
    rec.stage(Stage::DramDone, addr, 1, 0, 0, 50);
    EXPECT_EQ(rec.completedRequests(), 1u);
    EXPECT_DOUBLE_EQ(rec.histTotal().mean(), 45.0);
    EXPECT_EQ(rec.histIcntResp().count(), 0u); // stores send no reply
}

TEST(TraceRecorder, DisabledStreamsEmitNothing)
{
    TraceRecorder rec(/*lifecycle=*/false, /*throttle=*/true);
    CaptureSink cap;
    rec.addSink(&cap);
    rec.stage(Stage::MrqEnqueue, 0x1000, 0, 0, 0, 1);
    rec.pref(PrefEvent::Issued, 0x1000, 0, 1);
    rec.coalesce(0, 0x1000, 0, 2, 1);
    EXPECT_TRUE(cap.events.empty());
    rec.throttleUpdate(0, 100, 1, 2, 3, 4, 0.5, 2);
    ASSERT_EQ(cap.events.size(), 1u);
    EXPECT_EQ(cap.events[0].name, "throttle:update");
    rec.finish(); // lifecycle off: no histogram records either
    EXPECT_TRUE(cap.histograms.empty());
}

TEST(PerRunPath, InsertsTagBeforeExtension)
{
    EXPECT_EQ(perRunPath("trace.json", "mp"), "trace.mp.json");
    EXPECT_EQ(perRunPath("out/trace.json", "mp"), "out/trace.mp.json");
    EXPECT_EQ(perRunPath("out.d/trace", "mp"), "out.d/trace.mp");
    EXPECT_EQ(perRunPath("trace", "mp"), "trace.mp");
    EXPECT_EQ(perRunPath("trace.json", ""), "trace.json");
    EXPECT_EQ(perRunPath("", "mp"), "");
}

/**
 * Regression: two different kernels sharing a name (e.g. the same
 * benchmark with and without a SW-prefetch transform) used to resolve
 * to the same per-run path and silently overwrite each other's output.
 * Duplicated names now get a content-fingerprint suffix.
 */
TEST(UniqueRunTags, DisambiguatesDuplicateNames)
{
    std::vector<std::string> names = {"mp", "stream", "mp"};
    std::vector<std::uint64_t> fps = {0x1111, 0x2222, 0xabcdef01234567ffull};
    std::vector<std::string> tags = uniqueRunTags(names, fps);
    ASSERT_EQ(tags.size(), 3u);
    // Unique names pass through untouched.
    EXPECT_EQ(tags[1], "stream");
    // Duplicates keep the name as a prefix but must differ.
    EXPECT_EQ(tags[0], "mp-0000000000001111");
    EXPECT_EQ(tags[2], "mp-abcdef01234567ff");
    EXPECT_NE(perRunPath("trace.json", tags[0]),
              perRunPath("trace.json", tags[2]));
}

TEST(UniqueRunTags, IdenticalRunsKeepIdenticalTags)
{
    // Same name AND same fingerprint is the same run submitted twice;
    // it would hit the run cache, so the tags may legitimately match.
    std::vector<std::string> names = {"mp", "mp"};
    std::vector<std::uint64_t> fps = {7, 7};
    std::vector<std::string> tags = uniqueRunTags(names, fps);
    EXPECT_EQ(tags[0], tags[1]);
}

} // namespace
} // namespace obs
} // namespace mtp
