# CTest driver for the campaign figure-drift gate. Invoked as
#
#   cmake -DMTP_CAMPAIGN=<path> -DMTP_REPORT=<path> -DDATA_DIR=<path>
#         -DWORK_DIR=<path> -P run_campaign_gate.cmake
#
# Exercises the one-command reproduction pipeline end to end: runs the
# reduced (--smoke) campaign, checks the manifest summary renders, and
# gates the fresh manifest against the checked-in golden snapshot in
# tests/data/. A deliberately incomplete campaign must trip the gate.

foreach(var MTP_CAMPAIGN MTP_REPORT DATA_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} must be defined")
    endif()
endforeach()

set(GOLDEN "${DATA_DIR}/golden_campaign_smoke.json")
set(FRESH "${WORK_DIR}/campaign_gate_fresh.json")
set(PARTIAL "${WORK_DIR}/campaign_gate_partial.json")

function(run_step expect_status)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        string(JOIN " " cmd ${ARGN})
        message(FATAL_ERROR
            "'${cmd}' exited ${status}, expected ${expect_status}")
    endif()
endfunction()

# 1. The reduced campaign: every deterministic figure at 1/64 scale on
#    a class-covering benchmark subset. --skip-volatile keeps the
#    wall-clock harnesses out of a shared CI machine's test run.
run_step(0 ${MTP_CAMPAIGN} --smoke --quiet --skip-volatile
    --out ${FRESH})

# 2. The manifest summary must render from real output.
run_step(0 ${MTP_REPORT} campaign show ${FRESH})

# 3. The fresh manifest must match the checked-in golden snapshot.
#    Simulated cycle counts are bit-identical everywhere, so the 5%
#    relative tolerance only absorbs floating-point ratio noise across
#    compilers; real figure drift is far larger (see the unit tests).
run_step(0 ${MTP_REPORT} campaign diff ${GOLDEN} ${FRESH}
    --gate --tol-rel 5)

# 4. Without --gate, drift reports but does not fail ...
run_step(0 ${MTP_CAMPAIGN} --smoke --quiet --skip-volatile
    --only tab03_characteristics --out ${PARTIAL})
run_step(0 ${MTP_REPORT} campaign diff ${GOLDEN} ${PARTIAL})

# 5. ... and with --gate an incomplete campaign must trip it.
run_step(1 ${MTP_REPORT} campaign diff ${GOLDEN} ${PARTIAL} --gate)
