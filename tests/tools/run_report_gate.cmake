# CTest driver for the mtp-report regression gate. Invoked as
#
#   cmake -DMTP_SIM=<path> -DMTP_REPORT=<path> -DDATA_DIR=<path>
#         -DWORK_DIR=<path> -P run_report_gate.cmake
#
# Exercises the full artifact pipeline end to end: re-simulates the
# golden workload, checks the report modes run clean on real inputs,
# gates the fresh run against the checked-in golden snapshot, and
# verifies a known-regressed snapshot actually trips the gate.

foreach(var MTP_SIM MTP_REPORT DATA_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} must be defined")
    endif()
endforeach()

set(GOLDEN "${DATA_DIR}/golden_stream_base.json")
set(MTHWP "${DATA_DIR}/golden_stream_mthwp.json")
set(REGRESSED "${DATA_DIR}/golden_stream_regressed.json")

function(run_step expect_status)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        string(JOIN " " cmd ${ARGN})
        message(FATAL_ERROR
            "'${cmd}' exited ${status}, expected ${expect_status}")
    endif()
endfunction()

# 1. Regenerate the golden workload with the current simulator. The
#    simulator is deterministic, so any drift shows up in the gate.
run_step(0 ${MTP_SIM} --bench stream --scale 64 --quiet
    --stats ${WORK_DIR}/report_gate_fresh.json --json
    --sample-period 4096 --events ${WORK_DIR}/report_gate_fresh.jsonl
    numCores=2 dramChannels=2)

# 2. Report modes must run clean on real artifacts.
run_step(0 ${MTP_REPORT} show ${GOLDEN} ${MTHWP}
    --jsonl ${WORK_DIR}/report_gate_fresh.jsonl)
run_step(0 ${MTP_REPORT} compare ${GOLDEN} ${MTHWP})

# 3. The fresh run must match the checked-in snapshot within the gate.
run_step(0 ${MTP_REPORT} diff ${GOLDEN}
    ${WORK_DIR}/report_gate_fresh.json --gate 5)

# 4. A known regression (3x memory latency) must trip the gate ...
run_step(1 ${MTP_REPORT} diff ${GOLDEN} ${REGRESSED} --gate 5)

# 5. ... and pass when the gate is wide enough to absorb it.
run_step(0 ${MTP_REPORT} diff ${GOLDEN} ${REGRESSED} --gate 50)
