/**
 * @file
 * Compare every hardware prefetcher the library implements on one
 * benchmark: the four CPU baselines (naive and warp-id-trained), the
 * paper's MT-HWP, and MT-HWP with adaptive throttling.
 *
 * Usage: prefetcher_comparison [benchmark] [key=value ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "mtprefetch/mtprefetch.hh"

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mersenne";
    if (!mtp::Suite::has(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 1;
    }
    mtp::SimConfig base_cfg;
    base_cfg.throttlePeriod = 5000; // scaled grids, scaled period
    for (int i = 2; i < argc; ++i)
        base_cfg.applyOverride(argv[i]);

    mtp::Workload w = mtp::Suite::get(bench, /*scaleDiv=*/8);
    mtp::RunResult base = mtp::simulate(base_cfg, w.kernel);
    std::printf("%s baseline: %llu cycles (CPI %.2f)\n\n",
                bench.c_str(),
                static_cast<unsigned long long>(base.cycles), base.cpi);
    std::printf("%-22s %8s %9s %9s %7s %7s\n", "prefetcher", "speedup",
                "accuracy", "coverage", "late", "early");

    struct Row
    {
        const char *label;
        mtp::HwPrefKind kind;
        bool warpTraining;
        bool throttle;
    };
    const Row rows[] = {
        {"stride RPT (naive)", mtp::HwPrefKind::StrideRPT, false, false},
        {"stride RPT (warp)", mtp::HwPrefKind::StrideRPT, true, false},
        {"stridePC (naive)", mtp::HwPrefKind::StridePC, false, false},
        {"stridePC (warp)", mtp::HwPrefKind::StridePC, true, false},
        {"stream (naive)", mtp::HwPrefKind::Stream, false, false},
        {"stream (warp)", mtp::HwPrefKind::Stream, true, false},
        {"GHB (naive)", mtp::HwPrefKind::GHB, false, false},
        {"GHB (warp)", mtp::HwPrefKind::GHB, true, false},
        {"MT-HWP", mtp::HwPrefKind::MTHWP, true, false},
        {"MT-HWP + throttling", mtp::HwPrefKind::MTHWP, true, true},
    };
    for (const auto &row : rows) {
        mtp::SimConfig cfg = base_cfg;
        cfg.hwPref = row.kind;
        cfg.hwPrefWarpTraining = row.warpTraining;
        cfg.throttleEnable = row.throttle;
        mtp::RunResult r = mtp::simulate(cfg, w.kernel);
        std::printf("%-22s %8.3f %8.1f%% %8.1f%% %6.2f %6.2f\n",
                    row.label,
                    static_cast<double>(base.cycles) / r.cycles,
                    100.0 * r.accuracy(), 100.0 * r.prefCoverage(),
                    r.lateRatio(), r.earlyRatio());
    }
    return 0;
}
