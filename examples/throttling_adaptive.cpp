/**
 * @file
 * Watch the adaptive throttle engine (Sec. V) work: run a benchmark
 * whose prefetches are chronically late (streamcluster) and one where
 * prefetching is healthy (monte), with and without the engine, and
 * show the final metrics and throttle degrees per core.
 *
 * Set MTP_THROTTLE_TRACE=1 to stream the per-period decisions.
 */

#include <cstdio>
#include <string>

#include "mtprefetch/mtprefetch.hh"

namespace {

void
runCase(const std::string &bench, mtp::SimConfig cfg)
{
    mtp::Workload w = mtp::Suite::get(bench, /*scaleDiv=*/8);
    mtp::RunResult base = mtp::simulate(cfg, w.kernel);

    mtp::SimConfig pref_cfg = cfg;
    pref_cfg.hwPref = mtp::HwPrefKind::MTHWP;
    mtp::RunResult pref = mtp::simulate(pref_cfg, w.kernel);

    mtp::SimConfig thr_cfg = pref_cfg;
    thr_cfg.throttleEnable = true;
    mtp::RunResult thr = mtp::simulate(thr_cfg, w.kernel);

    std::printf("\n=== %s ===\n", bench.c_str());
    std::printf("  baseline    %8llu cycles\n",
                static_cast<unsigned long long>(base.cycles));
    std::printf("  MT-HWP      %8llu cycles (speedup %.3f, late %.0f%%, "
                "early %.0f%%)\n",
                static_cast<unsigned long long>(pref.cycles),
                static_cast<double>(base.cycles) / pref.cycles,
                100.0 * pref.lateRatio(), 100.0 * pref.earlyRatio());
    std::printf("  MT-HWP+T    %8llu cycles (speedup %.3f)\n",
                static_cast<unsigned long long>(thr.cycles),
                static_cast<double>(base.cycles) / thr.cycles);
    std::printf("  throttle state per core (0=all prefetches, 5=none):");
    for (unsigned c = 0; c < thr_cfg.numCores; ++c) {
        double degree = thr.stats.getOr(
            "core" + std::to_string(c) + ".throttle.degree", -1);
        std::printf(" %d", static_cast<int>(degree));
    }
    std::printf("\n  final metrics (core0): early rate %.3f, merge "
                "ratio %.3f, dropped %d%%\n",
                thr.stats.getOr("core0.throttle.earlyRate", 0.0),
                thr.stats.getOr("core0.throttle.mergeRatio", 0.0),
                static_cast<int>(
                    100.0 * thr.stats.getOr("core0.throttle.dropped", 0) /
                    std::max(1.0,
                             thr.stats.getOr("core0.throttle.dropped",
                                             0) +
                                 thr.stats.getOr(
                                     "core0.throttle.allowed", 0))));
}

} // namespace

int
main(int argc, char **argv)
{
    mtp::SimConfig cfg;
    cfg.throttlePeriod = 5000; // scaled grids, scaled period
    for (int i = 1; i < argc; ++i)
        cfg.applyOverride(argv[i]);

    std::printf("Adaptive prefetch throttling (Table I heuristics)\n");
    runCase("stream", cfg); // harmful prefetching: engine backs off
    runCase("monte", cfg);  // healthy prefetching: engine opens up
    return 0;
}
