/**
 * @file
 * Quickstart: run one benchmark on the baseline GPU, then with the
 * paper's MT-HWP hardware prefetcher (with adaptive throttling), and
 * print the headline numbers.
 *
 * Usage: quickstart [benchmark] [key=value ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "mtprefetch/mtprefetch.hh"

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "backprop";
    if (!mtp::Suite::has(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 1;
    }

    mtp::SimConfig cfg; // Table II baseline
    std::vector<std::string> overrides;
    for (int i = 2; i < argc; ++i)
        overrides.emplace_back(argv[i]);
    cfg.applyOverrides(overrides);

    mtp::Workload w = mtp::Suite::get(bench, /*scaleDiv=*/8);
    std::printf("benchmark %s (%s, %s-type): %llu blocks x %u warps\n",
                w.info.name.c_str(), w.info.suite.c_str(),
                mtp::toString(w.info.type).c_str(),
                static_cast<unsigned long long>(w.kernel.numBlocks),
                w.kernel.warpsPerBlock);

    // 1. Baseline: no prefetching.
    mtp::RunResult base = mtp::simulate(cfg, w.kernel);
    std::printf("baseline : %10llu cycles  CPI %6.2f  avg mem lat %7.1f\n",
                static_cast<unsigned long long>(base.cycles), base.cpi,
                base.avgDemandLatency);

    // 2. MT-HWP with adaptive throttling.
    mtp::SimConfig pref_cfg = cfg;
    pref_cfg.hwPref = mtp::HwPrefKind::MTHWP;
    pref_cfg.throttleEnable = true;
    mtp::RunResult pref = mtp::simulate(pref_cfg, w.kernel);
    std::printf("mthwp+t  : %10llu cycles  CPI %6.2f  avg mem lat %7.1f\n",
                static_cast<unsigned long long>(pref.cycles), pref.cpi,
                pref.avgDemandLatency);
    std::printf("           accuracy %.2f  coverage %.2f  early %.2f\n",
                pref.accuracy(), pref.prefCoverage(), pref.earlyRatio());
    std::printf("speedup  : %.3f\n",
                static_cast<double>(base.cycles) / pref.cycles);

    // 3. Perfect memory, for reference.
    mtp::SimConfig pmem_cfg = cfg;
    pmem_cfg.perfectMemory = true;
    mtp::RunResult pmem = mtp::simulate(pmem_cfg, w.kernel);
    std::printf("pmem     : %10llu cycles  CPI %6.2f\n",
                static_cast<unsigned long long>(pmem.cycles), pmem.cpi);
    return 0;
}
