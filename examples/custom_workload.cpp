/**
 * @file
 * Build a custom GPGPU kernel with the public API, apply the software
 * prefetching transforms to it, and run it on the simulated machine.
 *
 * The kernel models a gather-style workload:
 *
 *   __global__ void gather(...) {
 *       int tid = blockDim.x * blockIdx.x + threadIdx.x;
 *       int idx = index[tid];          // coalesced index load
 *       float v = table[idx];          // dependent, uncoalesced
 *       out[tid] = f(v);               // a little compute + store
 *   }
 */

#include <cstdio>

#include "mtprefetch/mtprefetch.hh"

int
main(int argc, char **argv)
{
    using namespace mtp;

    // ------------------------------------------------------------------
    // 1. Describe the kernel: a straight-line body per thread.
    // ------------------------------------------------------------------
    KernelDesc k;
    k.name = "gather";
    k.warpsPerBlock = 8;
    k.numBlocks = 256;
    k.maxBlocksPerCore = 2;

    Segment body;
    body.insts.push_back(StaticInst::comp(2)); // tid arithmetic

    AddressPattern index;            // index[tid]: coalesced ints
    index.base = 0x1000'0000ULL;
    index.threadStride = 4;
    body.insts.push_back(StaticInst::load(index, /*dest=*/0));

    // Three dependent hops through 48 B records (a short pointer
    // walk): per-warp MLP is 1, so the baseline is latency-bound.
    for (int hop = 1; hop <= 3; ++hop) {
        AddressPattern table;
        table.base = 0x2000'0000ULL + hop * 0x800;
        table.threadStride = 48;
        StaticInst gather = StaticInst::load(table, /*dest=*/hop);
        gather.srcSlots = {static_cast<std::int8_t>(hop - 1), -1};
        body.insts.push_back(gather);
    }

    body.insts.push_back(StaticInst::compUse(3, -1, 4));

    AddressPattern out;              // out[tid]
    out.base = 0x3000'0000ULL;
    out.threadStride = 4;
    body.insts.push_back(StaticInst::store(out, 3));

    k.segments.push_back(body);
    k.finalize();

    std::printf("kernel '%s': %llu blocks x %u warps, %llu "
                "warp-instructions per warp\n",
                k.name.c_str(),
                static_cast<unsigned long long>(k.numBlocks),
                k.warpsPerBlock,
                static_cast<unsigned long long>(k.warpInstsPerWarp()));

    // ------------------------------------------------------------------
    // 2. Run it: baseline, inter-thread SW prefetching, MT-HWP.
    // ------------------------------------------------------------------
    SimConfig cfg; // Table II machine
    for (int i = 1; i < argc; ++i)
        cfg.applyOverride(argv[i]);

    RunResult base = simulate(cfg, k);
    std::printf("\nbaseline : %8llu cycles  CPI %6.2f  mem latency "
                "%.0f\n",
                static_cast<unsigned long long>(base.cycles), base.cpi,
                base.avgDemandLatency);

    SwPrefetchOptions opts;
    opts.ipDistanceWarps = 4; // prefetch half a block of warps ahead
    KernelDesc with_ip = applyInterThreadPrefetch(k, opts);
    RunResult sw = simulate(cfg, with_ip);
    std::printf("SW IP    : %8llu cycles  speedup %.3f  coverage "
                "%.0f%%\n",
                static_cast<unsigned long long>(sw.cycles),
                static_cast<double>(base.cycles) / sw.cycles,
                100.0 * sw.prefCoverage());

    SimConfig hw_cfg = cfg;
    hw_cfg.hwPref = HwPrefKind::MTHWP;
    RunResult hw = simulate(hw_cfg, k);
    std::printf("MT-HWP   : %8llu cycles  speedup %.3f  coverage "
                "%.0f%%\n",
                static_cast<unsigned long long>(hw.cycles),
                static_cast<double>(base.cycles) / hw.cycles,
                100.0 * hw.prefCoverage());

    // ------------------------------------------------------------------
    // 3. Ask the analytical model what it expected (Sec. IV).
    // ------------------------------------------------------------------
    MtamlInputs in;
    in.compInsts = static_cast<double>(k.warpInstsPerWarp() -
                                       k.memInstsPerWarp());
    in.memInsts = static_cast<double>(k.memInstsPerWarp());
    in.activeWarps = base.avgActiveWarps;
    in.prefHitProb = hw.prefCoverage();
    std::printf("\nMTAML: tolerance %.0f vs latency %.0f -> %s\n",
                mtaml(in), base.avgDemandLatency,
                toString(classify(in, base.avgDemandLatency,
                                  hw.avgDemandLatency))
                    .c_str());
    return 0;
}
